package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
)

var binDir string

var binaries = []string{
	"psgen", "psroute", "psscale", "psbisect",
	"pssim", "psfig", "psfaults", "psmotifs",
	"pssearch", "psserve",
}

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "polarstar-clitest")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binDir = dir
	args := []string{"build", "-o", dir}
	for _, b := range binaries {
		args = append(args, "polarstar/cmd/"+b)
	}
	build := exec.Command("go", args...)
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building binaries: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes one built binary and returns its stdout, failing the test
// on a non-zero exit or empty output.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, bin), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %s: %v\nstderr: %s", bin, strings.Join(args, " "), err, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Fatalf("%s %s: empty stdout", bin, strings.Join(args, " "))
	}
	return stdout.String()
}

// artifact reads and decodes a -metrics JSON file.
func artifact(t *testing.T, path string) map[string]any {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("metrics artifact %s: %v", path, err)
	}
	return m
}

func field(t *testing.T, m map[string]any, path ...string) any {
	t.Helper()
	var cur any = m
	for _, k := range path {
		obj, ok := cur.(map[string]any)
		if !ok || obj[k] == nil {
			t.Fatalf("artifact missing field %s", strings.Join(path, "."))
		}
		cur = obj[k]
	}
	return cur
}

func TestPsgen(t *testing.T) {
	out := run(t, "psgen", "-topo", "er", "-q", "5", "-stats")
	if !strings.Contains(out, "31") {
		t.Errorf("psgen er q=5 stats missing order 31:\n%s", out)
	}
}

func TestPsroute(t *testing.T) {
	out := run(t, "psroute", "-spec", "ps-iq-small", "-src", "0", "-dst", "5")
	if !strings.Contains(out, "0") || !strings.Contains(out, "5") {
		t.Errorf("psroute output missing endpoints:\n%s", out)
	}
}

func TestPsscale(t *testing.T) {
	out := run(t, "psscale", "-fig", "7", "-lo", "8", "-hi", "10")
	if !strings.Contains(out, "radix") {
		t.Errorf("psscale fig 7 missing header:\n%s", out)
	}
}

func TestPsbisect(t *testing.T) {
	out := run(t, "psbisect", "-lo", "8", "-hi", "8")
	if !strings.Contains(out, "8") {
		t.Errorf("psbisect radix-8 sweep output:\n%s", out)
	}
}

// TestPssimMetrics is the acceptance check of the telemetry layer: a
// small pssim run must emit latency quantiles, per-channel occupancy
// high-water marks and stall counters, and an equally seeded re-run must
// reproduce the artifact byte for byte with timing disabled.
func TestPssimMetrics(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.json")
	args := []string{"-spec", "ps-iq-small", "-cycles", "60", "-loads", "0.2",
		"-seed", "7", "-workers", "2", "-metrics", out, "-metrics-timing=false"}
	stdout := run(t, "pssim", args...)
	if !strings.Contains(stdout, "0.2") {
		t.Errorf("pssim sweep output missing the load point:\n%s", stdout)
	}
	m := artifact(t, out)
	if got := field(t, m, "manifest", "tool"); got != "pssim" {
		t.Errorf("manifest tool = %v", got)
	}
	points := field(t, m, "sim", "points").([]any)
	if len(points) != 1 {
		t.Fatalf("sim.points has %d entries, want 1", len(points))
	}
	p := points[0].(map[string]any)
	lat := field(t, p, "latency_cycles").(map[string]any)
	for _, q := range []string{"p50", "p95", "p99"} {
		v, ok := lat[q].(float64)
		if !ok || v <= 0 {
			t.Errorf("latency quantile %s = %v, want > 0", q, lat[q])
		}
	}
	hwm := field(t, p, "channel_occupancy_hwm").(map[string]any)
	if v, ok := hwm["max"].(float64); !ok || v <= 0 {
		t.Errorf("channel occupancy max = %v, want > 0", hwm["max"])
	}
	for _, k := range []string{"stall_inject", "stall_eject", "stall_channel", "stall_credit"} {
		if _, ok := p[k]; !ok {
			t.Errorf("sim point missing stall counter %s", k)
		}
	}

	first, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	run(t, "pssim", args...)
	second, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("equal-seed re-run produced a different metrics artifact")
	}

	// The metrics payload must also be worker-count invariant: only the
	// manifest args (which echo the flags) may differ.
	out4 := filepath.Join(t.TempDir(), "m4.json")
	args4 := append(append([]string{}, args...), "-workers", "4")
	for i, a := range args4 {
		if a == out {
			args4[i] = out4
		}
	}
	run(t, "pssim", args4...)
	if a, b := artifact(t, out), artifact(t, out4); !reflect.DeepEqual(a["sim"], b["sim"]) {
		t.Error("sim metrics differ between -workers 2 and -workers 4")
	}
}

// TestPssearchMetrics is the acceptance check of the search CLI: an
// equally seeded re-run must reproduce stdout, the checkpoint, the best
// graph and the metrics payload byte for byte regardless of -workers,
// and resuming the checkpoint at the same epoch target must be a
// byte-stable no-op.
func TestPssearchMetrics(t *testing.T) {
	tmp := t.TempDir()
	runArgs := func(workers int, tag string) (stdout, cp, best, metrics string) {
		cp = filepath.Join(tmp, "cp-"+tag+".json")
		best = filepath.Join(tmp, "best-"+tag+".txt")
		metrics = filepath.Join(tmp, "m-"+tag+".json")
		stdout = run(t, "pssearch", "-start", "jellyfish:64,4", "-seed", "5",
			"-searchers", "3", "-epochs", "3", "-iters", "150",
			"-workers", fmt.Sprint(workers),
			"-checkpoint", cp, "-best-out", best,
			"-metrics", metrics, "-metrics-timing=false")
		return
	}
	out1, cp1, best1, m1 := runArgs(1, "w1")
	out4, cp4, best4, m4 := runArgs(4, "w4")

	if out1 != out4 {
		t.Errorf("stdout differs between -workers 1 and 4:\n%s\n---\n%s", out1, out4)
	}
	for _, pair := range [][2]string{{cp1, cp4}, {best1, best4}} {
		a, _ := os.ReadFile(pair[0])
		b, _ := os.ReadFile(pair[1])
		if !bytes.Equal(a, b) {
			t.Errorf("%s and %s differ between worker counts", pair[0], pair[1])
		}
	}
	if a, b := artifact(t, m1), artifact(t, m4); !reflect.DeepEqual(a["search"], b["search"]) {
		t.Error("search metrics differ between -workers 1 and -workers 4")
	}

	m := artifact(t, m1)
	if got := field(t, m, "manifest", "tool"); got != "pssearch" {
		t.Errorf("manifest tool = %v", got)
	}
	if aspl := field(t, m, "search", "best_aspl").(float64); aspl <= 1 {
		t.Errorf("search best_aspl = %v, want > 1", aspl)
	}
	if bound := field(t, m, "search", "aspl_lower_bound").(float64); bound <= 1 {
		t.Errorf("search aspl_lower_bound = %v, want > 1", bound)
	}
	if gap := field(t, m, "search", "gap_pct").(float64); gap < 0 {
		t.Errorf("search gap_pct = %v, want >= 0", gap)
	}
	if traj := field(t, m, "search", "trajectory").([]any); len(traj) != 3 {
		t.Errorf("search trajectory has %d points, want 3", len(traj))
	}
	if drift, ok := m["search"].(map[string]any)["drift"].(float64); ok && drift != 0 {
		t.Errorf("search drift = %v, want 0", drift)
	}

	// Resume at the same epoch target: byte-stable checkpoint no-op.
	cp2 := filepath.Join(tmp, "cp-resumed.json")
	run(t, "pssearch", "-resume", cp1, "-epochs", "3", "-checkpoint", cp2)
	a, _ := os.ReadFile(cp1)
	b, _ := os.ReadFile(cp2)
	if !bytes.Equal(a, b) {
		t.Error("resume at the same epoch target rewrote a different checkpoint")
	}

	// The best graph edge list: one edge per non-comment line, and the
	// degree sequence preserved means exactly 64·4/2 edges.
	data, err := os.ReadFile(best1)
	if err != nil {
		t.Fatal(err)
	}
	edges := 0
	for _, line := range strings.Split(string(data), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			edges++
		}
	}
	if edges != 128 {
		t.Errorf("best-out has %d edges, want 128 (64 vertices of degree 4)", edges)
	}
}

func TestPsfigMetrics(t *testing.T) {
	tmp := t.TempDir()
	out := filepath.Join(tmp, "fig.json")
	run(t, "psfig", "-only", "fig7", "-out", tmp, "-metrics", out, "-metrics-timing=false")
	m := artifact(t, out)
	figs := field(t, m, "figures").([]any)
	if len(figs) != 1 {
		t.Fatalf("figures has %d entries, want 1", len(figs))
	}
	if got := field(t, figs[0].(map[string]any), "name"); got != "fig7" {
		t.Errorf("figure name = %v, want fig7", got)
	}
}

func TestPsfaultsMetrics(t *testing.T) {
	out := filepath.Join(t.TempDir(), "faults.json")
	stdout := run(t, "psfaults", "-spec", "ps-iq-small", "-trials", "3",
		"-metrics", out, "-metrics-timing=false")
	if !strings.Contains(stdout, "fail") && !strings.Contains(stdout, "frac") {
		t.Errorf("psfaults output missing sweep table:\n%s", stdout)
	}
	m := artifact(t, out)
	if d := field(t, m, "faults", "intact_diameter").(float64); d < 1 || d > 3 {
		t.Errorf("intact diameter %v, want in [1, 3]", d)
	}
	if trials := field(t, m, "faults", "trials").([]any); len(trials) != 3 {
		t.Errorf("faults.trials has %d entries, want 3", len(trials))
	}
	if _, ok := field(t, m, "faults", "median").(map[string]any); !ok {
		t.Error("faults.median missing")
	}
}

// TestPsserveSmoke is the end-to-end daemon check: start psserve on an
// ephemeral port, run an eval round trip over real HTTP, verify the
// warm replay is a byte-identical cache hit, then drain it with SIGTERM
// and require a clean exit.
func TestPsserveSmoke(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "psserve"),
		"-addr", "127.0.0.1:0", "-workers", "2", "-run-timeout", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the resolved address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("psserve produced no output; stderr: %s", stderr.String())
	}
	line := sc.Text()
	const prefix = "psserve: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimPrefix(line, prefix)
	// Drain the rest of stdout in the background so the final report
	// does not block the process on a full pipe.
	restc := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteString("\n")
		}
		restc <- rest.String()
	}()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	eval := func() (string, []byte) {
		resp, err := http.Post(base+"/v1/eval", "application/json",
			strings.NewReader(`{"spec":"ps-iq-small","cycles":200,"seed":3}`))
		if err != nil {
			t.Fatalf("eval: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("eval = %d %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Cache"), body
	}
	cacheCold, cold := eval()
	cacheWarm, warm := eval()
	if cacheCold != "miss" || cacheWarm != "hit" {
		t.Fatalf("X-Cache cold/warm = %q/%q, want miss/hit", cacheCold, cacheWarm)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm replay differs from cold run:\n%s\n---\n%s", cold, warm)
	}

	resp, err = http.Get(base + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st map[string]any
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatalf("stats body %s: %v", stats, err)
	}
	serveStats, ok := st["serve"].(map[string]any)
	if !ok || serveStats["cache_hits"].(float64) != 1 || serveStats["builds"].(float64) != 1 {
		t.Fatalf("unexpected stats: %s", stats)
	}

	// Graceful drain: SIGTERM, clean exit 0, final report printed.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("psserve did not exit cleanly: %v\nstderr: %s", err, stderr.String())
	}
	if rest := <-restc; !strings.Contains(rest, "drained") {
		t.Fatalf("missing drain report in output: %q", rest)
	}
}

func TestPsmotifsMetrics(t *testing.T) {
	out := filepath.Join(t.TempDir(), "motifs.json")
	run(t, "psmotifs", "-motif", "allreduce", "-specs", "ps-iq-small",
		"-ranks", "32", "-iters", "1", "-metrics", out, "-metrics-timing=false")
	m := artifact(t, out)
	flows := field(t, m, "flows").([]any)
	if len(flows) != 2 {
		t.Fatalf("flows has %d entries, want 2 (MIN and UGAL)", len(flows))
	}
	for _, f := range flows {
		fr := f.(map[string]any)
		if us, ok := fr["completion_us"].(float64); !ok || us <= 0 {
			t.Errorf("flow %v completion_us = %v, want > 0", fr["routing"], fr["completion_us"])
		}
		if msgs := field(t, fr, "messages").(float64); msgs <= 0 {
			t.Errorf("flow %v delivered %v messages", fr["routing"], msgs)
		}
	}
}
