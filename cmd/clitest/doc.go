// Package clitest smoke-tests every command-line tool end to end: it
// builds all eight binaries once per test run and executes each against
// a scaled-down spec, asserting exit status, non-empty output, and — for
// the instrumented CLIs — a parseable, deterministic metrics artifact.
package clitest
