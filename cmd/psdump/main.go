// psdump prints the full Result and marshaled obs artifact of every
// small spec × routing mode at a given worker count, plus one scripted
// fault-plan run — a determinism oracle for comparing engine versions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"

	"polarstar/internal/obs"
	"polarstar/internal/sim"
)

func main() {
	workers := flag.Int("workers", 1, "engine worker count")
	flag.Parse()
	smalls := []string{
		"ps-iq-small", "ps-pal-small", "bf-small", "hx-small", "df-small",
		"sf-small", "mf-small", "ft-small", "pf-small", "slimfly-small",
	}
	for _, name := range smalls {
		spec := sim.MustNewSpec(name)
		for _, mode := range []string{"min", "ugal"} {
			// Twice per (spec, mode): with the obs artifact attached (the
			// instrumented path) and without (the plain fast path) — the
			// Result must be identical either way and across versions.
			for _, withObs := range []bool{true, false} {
				p := sim.DefaultParams(1)
				p.Warmup, p.Measure, p.Drain = 500, 1000, 1500
				p.Workers = *workers
				if withObs {
					p.Metrics = &obs.SimRun{}
					p.MetricsInterval = 250
				}
				var r sim.Routing
				if mode == "min" {
					r = spec.MinRouting()
				} else {
					r = spec.UGALRouting(p.PacketFlits)
				}
				pat, err := spec.Pattern("uniform", 1)
				if err != nil {
					panic(err)
				}
				eng := sim.NewEngine(p, spec.Graph, spec.Config(), r, pat)
				res := eng.Run(0.3)
				if withObs {
					b, _ := json.Marshal(p.Metrics)
					fmt.Printf("%s/%s result=%+v\nobs=%s\n", name, mode, res, b)
				} else {
					fmt.Printf("%s/%s/noobs result=%+v\n", name, mode, res)
				}
			}
		}
	}
	// High-load no-obs runs: saturate ps-iq-small so the credit-stall
	// path (parked units) dominates.
	for _, load := range []float64{0.6, 0.95} {
		spec := sim.MustNewSpec("ps-iq-small")
		p := sim.DefaultParams(3)
		p.Warmup, p.Measure, p.Drain = 500, 1000, 1500
		p.Workers = *workers
		pat, err := spec.Pattern("uniform", 3)
		if err != nil {
			panic(err)
		}
		eng := sim.NewEngine(p, spec.Graph, spec.Config(), spec.UGALRouting(p.PacketFlits), pat)
		res := eng.Run(load)
		fmt.Printf("sat/%.2f result=%+v\n", load, res)
	}
	// Scripted fault plan on ps-iq-small (mirrors the determinism tests).
	spec := sim.MustNewSpec("ps-iq-small")
	var edge [2]int
	for _, e := range spec.Graph.Edges() {
		if e[0] != 3 && e[1] != 3 {
			edge = e
			break
		}
	}
	plan := &sim.Plan{Events: []sim.FaultEvent{
		{Cycle: 350, Kind: sim.LinkDown, U: edge[0], V: edge[1]},
		{Cycle: 420, Kind: sim.RouterDown, U: 3},
		{Cycle: 600, Kind: sim.LinkUp, U: edge[0], V: edge[1]},
	}}
	for _, mode := range []string{"min", "ugal"} {
		p := sim.DefaultParams(7)
		p.Warmup, p.Measure, p.Drain = 300, 600, 2500
		p.Workers = *workers
		p.Plan = plan
		p.Metrics = &obs.SimRun{}
		p.MetricsInterval = 250
		var r sim.Routing
		if mode == "min" {
			r = spec.MinRouting()
		} else {
			r = spec.UGALRouting(p.PacketFlits)
		}
		pat, err := spec.Pattern("uniform", p.Seed)
		if err != nil {
			panic(err)
		}
		eng := sim.NewEngine(p, spec.Graph, spec.Config(), r, pat)
		res := eng.Run(0.3)
		b, _ := json.Marshal(p.Metrics)
		fmt.Printf("fault/%s result=%+v\nobs=%s\n", mode, res, b)
	}
}
