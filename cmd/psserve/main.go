// psserve is the topology-evaluation daemon: the simulator behind an
// HTTP/JSON API (package serve). Endpoints:
//
//	POST /v1/eval        evaluate a (spec, routing, pattern, load, seed,
//	                     fault-plan) point; repeats replay from the
//	                     content-addressed artifact cache (X-Cache: hit)
//	GET  /v1/runs/{id}   poll an async evaluation by its key
//	GET  /v1/cache/stats cache + admission counters
//	GET  /healthz        liveness (503 while draining)
//
// SIGINT/SIGTERM drains gracefully: the listener stops, in-flight runs
// finish, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polarstar/internal/serve"
)

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "psserve: %v\n", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0: GOMAXPROCS)")
	queue := flag.Int("queue", 0, "pending-evaluation queue depth (0: 4x workers)")
	cacheMB := flag.Int64("cache-mb", 64, "artifact cache budget in MiB")
	runTimeout := flag.Duration("run-timeout", 120*time.Second, "per-evaluation deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown deadline for open connections")
	flag.Parse()

	svc := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: *cacheMB << 20,
		RunTimeout: *runTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The parse target of the smoke tests: the resolved address, so
	// callers can bind port 0 and discover the port.
	fmt.Printf("psserve: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Drain order: stop accepting connections first, then let the
	// service finish queued work — requests admitted before the
	// listener closed still get their answer.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
	svc.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	st := svc.Stats()
	fmt.Printf("psserve: drained (requests=%d cache_hits=%d cache_misses=%d shed=%d builds=%d)\n",
		st.Requests, st.CacheHits, st.CacheMisses, st.Shed, st.Builds)
}
