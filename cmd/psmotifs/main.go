// psmotifs reproduces the real-world motif evaluation of §10 (Fig 11):
// Allreduce and Sweep3D completion times under MIN and adaptive (UGAL)
// routing on the flow-level simulator.
//
// Usage:
//
//	psmotifs -motif allreduce -specs ps-iq,df,hx,ft
//	psmotifs -motif sweep3d -ranks 1024
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"polarstar/internal/flowsim"
	"polarstar/internal/motifs"
	"polarstar/internal/obs"
	"polarstar/internal/prof"
	"polarstar/internal/sim"
)

func main() {
	var (
		motif    = flag.String("motif", "allreduce", "allreduce|sweep3d")
		specsArg = flag.String("specs", "ps-iq,df,hx,ft", "comma-separated topology specs")
		ranks    = flag.Int("ranks", 4096, "participating ranks (allreduce rounds down to 2^k; sweep3d uses a near-square grid)")
		msgKB    = flag.Float64("msgkb", 64, "message size in KB (paper: 64 for allreduce)")
		iters    = flag.Int("iters", 10, "iterations (paper: 10)")
		compute  = flag.Float64("compute", 100, "sweep3d per-cell compute time (ns)")
		seed     = flag.Int64("seed", 1, "seed")
		met      = obs.Flags()
	)
	flag.Parse()
	defer prof.Start()()

	var artifact *obs.Run
	if met.Enabled() {
		artifact = obs.NewRun("psmotifs")
		artifact.Manifest.Seed = *seed
	}
	fmt.Printf("%-10s %-14s %-14s %-8s\n", "topology", "MIN (us)", "UGAL (us)", "speedup")
	for _, name := range strings.Split(*specsArg, ",") {
		name = strings.TrimSpace(name)
		spec, err := sim.NewSpec(name)
		if err != nil {
			fatal(err)
		}
		run := func(adaptive bool) float64 {
			p := flowsim.DefaultParams(*seed)
			p.Adaptive = adaptive
			net := flowsim.New(spec.MinEngine, spec.Config(), spec.Graph, spec.UGALMids, p)
			var fr *obs.FlowRun
			if artifact != nil {
				routing := "MIN"
				if adaptive {
					routing = "UGAL"
				}
				fr = &obs.FlowRun{Topology: name, Motif: *motif, Routing: routing}
				artifact.Flows = append(artifact.Flows, fr)
				net.Observe(fr)
			}
			r := *ranks
			if r > spec.Endpoints() {
				r = spec.Endpoints()
			}
			var t float64
			prof.Task(func() {
				switch *motif {
				case "allreduce":
					t = motifs.Allreduce(net, r, *msgKB*1024, *iters)
				case "sweep3d":
					side := int(math.Sqrt(float64(r)))
					t = motifs.Sweep3D(net, side, side, *msgKB*1024, *compute, *iters)
				default:
					fatal(fmt.Errorf("unknown motif %q", *motif))
				}
			}, "phase", *motif, "spec", name)
			if fr != nil {
				fr.CompletionUS = t / 1000
			}
			return t
		}
		min := run(false)
		ugal := run(true)
		fmt.Printf("%-10s %-14.1f %-14.1f %-8.2f\n", name, min/1000, ugal/1000, min/ugal)
	}
	if artifact != nil {
		if err := met.Write(artifact); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote metrics %s\n", *met.Path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psmotifs:", err)
	os.Exit(1)
}
