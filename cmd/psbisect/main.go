// psbisect reproduces the bisection study of §11.1 (Figs 12 and 13): the
// estimated fraction of links crossing the minimum bisection for the
// largest feasible construction of each topology per radix.
//
// Usage:
//
//	psbisect -lo 8 -hi 24            # Fig 12 sweep (explicit graphs)
//	psbisect -fig 13 -lo 8 -hi 24    # PolarStar IQ vs Paley
//	psbisect -spec ps-iq             # one Table 3 configuration
package main

import (
	"flag"
	"fmt"
	"os"

	"polarstar/internal/moore"
	"polarstar/internal/partition"
	"polarstar/internal/sim"
	"polarstar/internal/topo"
)

func main() {
	var (
		lo       = flag.Int("lo", 8, "lowest radix")
		hi       = flag.Int("hi", 24, "highest radix")
		fig      = flag.Int("fig", 12, "12 (cross-topology) or 13 (PolarStar IQ vs Paley)")
		specName = flag.String("spec", "", "bisect a single Table 3 spec instead of sweeping")
		seed     = flag.Int64("seed", 1, "partitioner seed")
		maxN     = flag.Int("maxn", 40000, "skip graphs larger than this")
	)
	flag.Parse()
	opts := partition.Options{}

	if *specName != "" {
		spec, err := sim.NewSpec(*specName)
		if err != nil {
			fatal(err)
		}
		f := partition.CutFraction(spec.Graph, *seed, opts)
		fmt.Printf("%s: n=%d m=%d bisection fraction %.3f\n", spec.Name, spec.Graph.N(), spec.Graph.M(), f)
		return
	}

	switch *fig {
	case 12:
		fmt.Printf("%-6s %-10s %-10s %-10s %-10s %-10s\n", "radix", "polarstar", "bundlefly", "dragonfly", "hyperx", "jellyfish")
		for r := *lo; r <= *hi; r++ {
			fmt.Printf("%-6d %-10s %-10s %-10s %-10s %-10s\n", r,
				frac(buildBestPolarStar(r, *maxN), *seed, opts),
				frac(buildBestBundlefly(r, *maxN), *seed, opts),
				frac(buildBestDragonfly(r, *maxN), *seed, opts),
				frac(buildBestHyperX(r, *maxN), *seed, opts),
				frac(buildJellyfishLike(r, *maxN, *seed), *seed, opts))
		}
	case 13:
		fmt.Printf("%-6s %-10s %-10s\n", "radix", "ps-iq", "ps-paley")
		for r := *lo; r <= *hi; r++ {
			fmt.Printf("%-6d %-10s %-10s\n", r,
				frac(buildBestPolarStarKind(r, topo.KindIQ, *maxN), *seed, opts),
				frac(buildBestPolarStarKind(r, topo.KindPaley, *maxN), *seed, opts))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func frac(g *topo.Flat, seed int64, opts partition.Options) string {
	if g == nil {
		return "-"
	}
	return fmt.Sprintf("%.3f", partition.CutFraction(g.G, seed, opts))
}

func buildBestPolarStar(radix, maxN int) *topo.Flat {
	cfgs := moore.PolarStarConfigs(radix)
	for _, c := range cfgs {
		if int(c.Order) > maxN {
			continue
		}
		ps, err := topo.NewPolarStar(c.Q, c.DPrime, c.Kind)
		if err == nil {
			return &topo.Flat{G: ps.G}
		}
	}
	return nil
}

func buildBestPolarStarKind(radix int, kind topo.SupernodeKind, maxN int) *topo.Flat {
	for _, c := range moore.PolarStarConfigs(radix) {
		if c.Kind != kind || int(c.Order) > maxN {
			continue
		}
		ps, err := topo.NewPolarStar(c.Q, c.DPrime, c.Kind)
		if err == nil {
			return &topo.Flat{G: ps.G}
		}
	}
	return nil
}

func buildBestBundlefly(radix, maxN int) *topo.Flat {
	best := moore.BestBundlefly(radix)
	if !best.Valid() || int(best.Order) > maxN {
		return nil
	}
	var q, d int
	if _, err := fmt.Sscanf(best.Config, "q=%d d'=%d", &q, &d); err != nil {
		return nil
	}
	bf, err := topo.NewBundlefly(q, d)
	if err != nil {
		return nil
	}
	return &topo.Flat{G: bf.G}
}

func buildBestDragonfly(radix, maxN int) *topo.Flat {
	best := moore.BestDragonfly(radix)
	if !best.Valid() || int(best.Order) > maxN {
		return nil
	}
	var a, h int
	if _, err := fmt.Sscanf(best.Config, "a=%d h=%d", &a, &h); err != nil {
		return nil
	}
	df, err := topo.NewDragonfly(a, h)
	if err != nil {
		return nil
	}
	return &topo.Flat{G: df.G}
}

func buildBestHyperX(radix, maxN int) *topo.Flat {
	best := moore.BestHyperX3D(radix)
	if !best.Valid() || int(best.Order) > maxN {
		return nil
	}
	var a, b, c int
	if _, err := fmt.Sscanf(best.Config, "%dx%dx%d", &a, &b, &c); err != nil {
		return nil
	}
	hx, err := topo.NewHyperX(a, b, c)
	if err != nil {
		return nil
	}
	return &topo.Flat{G: hx.G}
}

// buildJellyfishLike builds a random regular graph with the same radix
// and scale as the best PolarStar (the Fig 12 protocol).
func buildJellyfishLike(radix, maxN int, seed int64) *topo.Flat {
	best := moore.BestPolarStar(radix)
	if !best.Valid() || int(best.Order) > maxN {
		return nil
	}
	n := int(best.Order)
	if n*radix%2 != 0 {
		n++
	}
	g, err := topo.NewJellyfish(n, radix, seed)
	if err != nil {
		return nil
	}
	return &topo.Flat{G: g}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psbisect:", err)
	os.Exit(1)
}
