// psscale reproduces the scale analysis of the paper: Fig 1 (diameter-3
// scalability), Fig 4 (diameter-2 families), Fig 7 (PolarStar design
// space), Table 1 (qualitative properties) and the §1.3 headline
// geometric-mean ratios.
//
// Usage:
//
//	psscale -fig 1 -lo 8 -hi 64
//	psscale -fig 4
//	psscale -fig 7 -lo 8 -hi 32
//	psscale -fig 7 -measure -lo 8 -hi 24 -maxorder 20000
//	psscale -table 1
//	psscale -headline
//
// With -measure, fig 7 constructs every feasible configuration up to
// -maxorder routers and verifies its exact diameter and mean path length
// with the bit-parallel all-pairs BFS engine.
package main

import (
	"flag"
	"fmt"
	"os"

	"polarstar/internal/moore"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to reproduce: 1, 4 or 7")
		table    = flag.Int("table", 0, "table to print: 1")
		headline = flag.Bool("headline", false, "print §1.3 geomean scale ratios")
		lo       = flag.Int("lo", 8, "lowest radix")
		hi       = flag.Int("hi", 64, "highest radix")
		withSF   = flag.Bool("sf", false, "include Spectralfly diameter-3 design points in fig 1 (slow: explicit LPS construction)")
		sfCap    = flag.Int("sfcap", 30000, "order cap for Spectralfly candidates")
		measure  = flag.Bool("measure", false, "fig 7: construct each configuration and measure exact diameter/APL")
		maxOrder = flag.Int("maxorder", 20000, "order cap for -measure construction")
	)
	flag.Parse()

	switch {
	case *fig == 1:
		if *withSF {
			moore.WriteFig1(os.Stdout, moore.Fig1WithSpectralfly(*lo, *hi, *sfCap))
			break
		}
		moore.WriteFig1(os.Stdout, moore.Fig1(*lo, *hi))
	case *fig == 4:
		moore.WriteFig4(os.Stdout, moore.Fig4(*lo, *hi))
	case *fig == 7:
		if *measure {
			moore.WriteFig7Measured(os.Stdout, *lo, *hi, *maxOrder)
			break
		}
		moore.WriteFig7(os.Stdout, *lo, *hi)
	case *table == 1:
		fmt.Print(moore.Table1)
	case *headline:
		h := moore.Headline(*lo, *hi)
		fmt.Printf("Geometric-mean scale of PolarStar over baselines, radix %d..%d:\n", *lo, *hi)
		fmt.Printf("  vs Bundlefly:  %.2fx (paper: 1.3x)\n", h.VsBundlefly)
		fmt.Printf("  vs Dragonfly:  %.2fx (paper: 1.9x)\n", h.VsDragonfly)
		fmt.Printf("  vs 3-D HyperX: %.2fx (paper: 6.7x)\n", h.VsHyperX)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
