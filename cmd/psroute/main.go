// psroute queries routing on a topology spec: minimal paths (with the
// storage-light analytic router where available), Valiant candidates,
// edge-disjoint path counts, and routing-state accounting.
//
// Usage:
//
//	psroute -spec ps-iq -src 0 -dst 999
//	psroute -spec ps-iq -storage
//	psroute -spec df -src 3 -dst 700 -disjoint
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"polarstar/internal/route"
	"polarstar/internal/sim"
)

func main() {
	var (
		specName = flag.String("spec", "ps-iq", "topology spec (see pssim)")
		src      = flag.Int("src", 0, "source router")
		dst      = flag.Int("dst", 1, "destination router")
		disjoint = flag.Bool("disjoint", false, "print edge-disjoint paths")
		storage  = flag.Bool("storage", false, "print routing-state accounting (PolarStar specs)")
		valiant  = flag.Bool("valiant", false, "print Valiant candidate paths")
		seed     = flag.Int64("seed", 1, "seed for path sampling")
	)
	flag.Parse()

	spec, err := sim.NewSpec(*specName)
	if err != nil {
		fatal(err)
	}
	if *src < 0 || *src >= spec.Graph.N() || *dst < 0 || *dst >= spec.Graph.N() {
		fatal(fmt.Errorf("router ids must be in [0,%d)", spec.Graph.N()))
	}
	rng := rand.New(rand.NewSource(*seed))

	if *storage {
		psRouter, ok := spec.MinEngine.(*route.PolarStar)
		if !ok {
			// Build the PolarStar router if this is a PolarStar spec with
			// a different engine; otherwise report table numbers only.
			fmt.Println("spec does not use the analytic router; table accounting only")
			tab := route.NewTable(spec.Graph, route.AllMinPaths)
			fmt.Printf("distance-table floor: %d bytes total (%d per router)\n",
				tab.StateBytes(), spec.Graph.N())
			fmt.Printf("all-minpath entries:  %d total\n", tab.NextHopEntries())
			return
		}
		tab := route.NewTable(spec.Graph, route.AllMinPaths)
		cmp := route.CompareState(psRouter, tab)
		fmt.Printf("routers:                         %d\n", cmp.Routers)
		fmt.Printf("analytic state per router:       %d bytes\n", cmp.AnalyticPerRouter)
		fmt.Printf("distance-table floor per router: %d bytes\n", cmp.TablePerRouter)
		fmt.Printf("all-minpath entries per router:  %d\n", cmp.AllMinpathPerRouter)
		return
	}

	path := spec.MinEngine.Route(*src, *dst, rng)
	fmt.Printf("minpath %d -> %d (%d hops): %v\n", *src, *dst, len(path)-1, path)

	if *valiant {
		v := route.NewValiant(spec.MinEngine, spec.Graph.N(), 4)
		for i, cand := range v.Candidates(*src, *dst, rng) {
			kind := "valiant"
			if i == 0 {
				kind = "minimal"
			}
			fmt.Printf("candidate %d (%s, %d hops): %v\n", i, kind, len(cand)-1, cand)
		}
	}
	if *disjoint {
		paths := route.EdgeDisjointPaths(spec.Graph, *src, *dst, 0)
		fmt.Printf("edge-disjoint paths: %d\n", len(paths))
		for i, p := range paths {
			fmt.Printf("  %2d: %v\n", i, p)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psroute:", err)
	os.Exit(1)
}
