// psfig regenerates every figure of the paper in one run, writing text
// tables and SVG charts into a results directory. By default it uses the
// scaled-down configurations (minutes); -full switches to paper scale
// (Table 3 topologies, full load ladders — substantially longer).
//
// Usage:
//
//	psfig -out results
//	psfig -out results -full
//	psfig -out results -only fig9,fig14
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"polarstar/internal/faults"
	"polarstar/internal/flowsim"
	"polarstar/internal/moore"
	"polarstar/internal/motifs"
	"polarstar/internal/obs"
	"polarstar/internal/partition"
	"polarstar/internal/plot"
	"polarstar/internal/prof"
	"polarstar/internal/sim"
	"polarstar/internal/topo"
)

type ctx struct {
	out         string
	full        bool
	seed        int64
	workers     int
	fig         *obs.Figure // telemetry section of the figure being built (nil: off)
	metInterval int
}

func main() {
	var (
		out  = flag.String("out", "results", "output directory")
		full = flag.Bool("full", false, "paper-scale configurations (slow)")
		only = flag.String("only", "", "comma-separated subset: fig1,fig4,fig7,fig9,fig10,fig11,fig12,fig13,fig14,headline")
		seed = flag.Int64("seed", 1, "seed")
		wrk  = flag.Int("workers", 0, "sim engine shard workers per run (0: auto-split cores; results identical for any value)")
		met  = obs.Flags()
	)
	flag.Parse()
	defer prof.Start()()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	c := ctx{out: *out, full: *full, seed: *seed, workers: *wrk, metInterval: *met.Interval}
	var artifact *obs.Run
	if met.Enabled() {
		artifact = obs.NewRun("psfig")
		artifact.Manifest.Seed = *seed
		artifact.Manifest.Workers = *wrk
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*only, ",") {
		if f = strings.TrimSpace(f); f != "" {
			want[f] = true
		}
	}
	run := func(name string, fn func(ctx) error) {
		if len(want) > 0 && !want[name] {
			return
		}
		c.fig = nil
		if artifact != nil {
			c.fig = &obs.Figure{Name: name}
			artifact.Figures = append(artifact.Figures, c.fig)
		}
		start := time.Now()
		var err error
		prof.Task(func() { err = fn(c) }, "phase", name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psfig: %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s done in %.1fs\n", name, time.Since(start).Seconds())
	}
	run("fig1", fig1)
	run("fig4", fig4)
	run("fig7", fig7)
	run("headline", headline)
	run("fig9", fig9)
	run("fig10", fig10)
	run("fig11", fig11)
	run("fig12", fig12)
	run("fig13", fig13)
	run("fig14", fig14)
	if artifact != nil {
		if err := met.Write(artifact); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics %s\n", *met.Path)
	}
}

func (c ctx) file(name string) (*os.File, error) {
	return os.Create(filepath.Join(c.out, name))
}

func (c ctx) simSpecs() []string {
	if c.full {
		return []string{"ps-iq", "ps-pal", "bf", "hx", "df", "sf", "mf", "ft"}
	}
	return []string{"ps-iq-small", "ps-pal-small", "bf-small", "hx-small", "df-small", "sf-small", "mf-small", "ft-small"}
}

func (c ctx) simParams() sim.Params {
	p := sim.DefaultParams(c.seed)
	p.Workers = c.workers
	p.MetricsInterval = c.metInterval
	if !c.full {
		p.Warmup, p.Measure, p.Drain = 1000, 2000, 4000
	}
	return p
}

func (c ctx) loads() []float64 {
	if c.full {
		return sim.DefaultLoads
	}
	return []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
}

func fig1(c ctx) error {
	hi := 64
	if c.full {
		hi = 128
	}
	f, err := c.file("fig01_scalability.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	rows := moore.Fig1(8, hi)
	moore.WriteFig1(f, rows)

	chart := &plot.Chart{Title: "Fig 1: Moore-bound efficiency of diameter-3 topologies",
		XLabel: "network radix", YLabel: "order / Moore bound"}
	add := func(name string, pick func(moore.Fig1Row) moore.Point) {
		var xs, ys []float64
		for _, r := range rows {
			p := pick(r)
			if p.Valid() {
				xs = append(xs, float64(r.Radix))
				ys = append(ys, float64(p.Order)/float64(r.MooreBound))
			}
		}
		chart.Add(name, xs, ys)
	}
	add("PolarStar", func(r moore.Fig1Row) moore.Point { return r.PolarStar })
	add("StarMax", func(r moore.Fig1Row) moore.Point { return r.StarMax })
	add("Bundlefly", func(r moore.Fig1Row) moore.Point { return r.Bundlefly })
	add("Dragonfly", func(r moore.Fig1Row) moore.Point { return r.Dragonfly })
	add("3D HyperX", func(r moore.Fig1Row) moore.Point { return r.HyperX3D })
	add("Kautz", func(r moore.Fig1Row) moore.Point { return r.Kautz })
	return writeChart(c, chart, "fig01_scalability.svg")
}

func fig4(c ctx) error {
	f, err := c.file("fig04_diameter2.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	rows := moore.Fig4(5, 64)
	moore.WriteFig4(f, rows)
	chart := &plot.Chart{Title: "Fig 4: diameter-2 families vs Moore bound",
		XLabel: "degree", YLabel: "order / Moore bound"}
	add := func(name string, pick func(moore.Fig4Row) moore.Point) {
		var xs, ys []float64
		for _, r := range rows {
			if p := pick(r); p.Valid() {
				xs = append(xs, float64(r.Radix))
				ys = append(ys, float64(p.Order)/float64(r.MooreBound))
			}
		}
		chart.Add(name, xs, ys)
	}
	add("ER", func(r moore.Fig4Row) moore.Point { return r.ER })
	add("MMS", func(r moore.Fig4Row) moore.Point { return r.MMS })
	add("Paley", func(r moore.Fig4Row) moore.Point { return r.Paley })
	add("Cayley", func(r moore.Fig4Row) moore.Point { return r.Cayley })
	return writeChart(c, chart, "fig04_diameter2.svg")
}

func fig7(c ctx) error {
	hi := 64
	if c.full {
		hi = 128
	}
	f, err := c.file("fig07_designspace.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	moore.WriteFig7(f, 8, hi)
	chart := &plot.Chart{Title: "Fig 7: feasible PolarStar orders per radix",
		XLabel: "network radix", YLabel: "routers"}
	var xs, ys []float64
	for r := 8; r <= hi; r++ {
		for _, cfg := range moore.PolarStarConfigs(r) {
			xs = append(xs, float64(r))
			ys = append(ys, float64(cfg.Order))
		}
	}
	chart.Add("configurations", xs, ys)
	return writeChart(c, chart, "fig07_designspace.svg")
}

func headline(c ctx) error {
	f, err := c.file("headline_ratios.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	h := moore.Headline(8, 128)
	fmt.Fprintf(f, "PolarStar vs Bundlefly:  %.3fx (paper 1.3x)\n", h.VsBundlefly)
	fmt.Fprintf(f, "PolarStar vs Dragonfly:  %.3fx (paper 1.9x)\n", h.VsDragonfly)
	fmt.Fprintf(f, "PolarStar vs 3-D HyperX: %.3fx (paper 6.7x)\n", h.VsHyperX)
	return nil
}

// simPanel runs one (routing, pattern) panel across all topologies and
// writes a combined text table and latency-load SVG.
func simPanel(c ctx, fileStem string, mode sim.RoutingMode, pattern string) error {
	f, err := c.file(fileStem + ".txt")
	if err != nil {
		return err
	}
	defer f.Close()
	chart := &plot.Chart{Title: fmt.Sprintf("%s, %s routing", pattern, mode),
		XLabel: "offered load", YLabel: "avg latency (cycles)"}
	for _, name := range c.simSpecs() {
		spec, err := sim.NewSpec(name)
		if err != nil {
			return err
		}
		var sm *obs.SimSweep
		if c.fig != nil {
			sm = obs.NewSimSweep(name, mode.String(), pattern, len(c.loads()))
			c.fig.Sims = append(c.fig.Sims, sm)
		}
		res, err := sim.SweepObs(spec, mode, pattern, c.loads(), c.simParams(), sm)
		if err != nil {
			return err
		}
		sim.WriteSweep(f, res)
		fmt.Fprintln(f)
		var xs, ys []float64
		for _, p := range res.Points {
			if p.Saturated {
				break
			}
			xs = append(xs, p.Load)
			ys = append(ys, p.AvgLatency)
		}
		chart.Add(name, xs, ys)
	}
	return writeChart(c, chart, fileStem+".svg")
}

func fig9(c ctx) error {
	panels := []struct {
		stem    string
		mode    sim.RoutingMode
		pattern string
	}{
		{"fig09a_uniform_min", sim.MIN, "uniform"},
		{"fig09c_uniform_ugal", sim.UGALMode, "uniform"},
		{"fig09d_permutation", sim.UGALMode, "permutation"},
		{"fig09e_bitreverse", sim.UGALMode, "bitreverse"},
		{"fig09f_bitshuffle", sim.UGALMode, "bitshuffle"},
	}
	for _, p := range panels {
		if err := simPanel(c, p.stem, p.mode, p.pattern); err != nil {
			return err
		}
	}
	return nil
}

func fig10(c ctx) error {
	if err := simPanel(c, "fig10a_adversarial_min", sim.MIN, "adversarial"); err != nil {
		return err
	}
	return simPanel(c, "fig10b_adversarial_ugal", sim.UGALMode, "adversarial")
}

func fig11(c ctx) error {
	f, err := c.file("fig11_motifs.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	ranks := 256
	if c.full {
		ranks = 4096
	}
	specs := []string{"ps-iq", "df", "hx", "ft"}
	if !c.full {
		specs = []string{"ps-iq-small", "df-small", "hx-small", "ft-small"}
	}
	fmt.Fprintf(f, "%-12s %-14s %-14s %-14s %-14s\n", "topology",
		"allreduce-MIN", "allreduce-UGAL", "sweep3d-MIN", "sweep3d-UGAL")
	for _, name := range specs {
		spec, err := sim.NewSpec(name)
		if err != nil {
			return err
		}
		r := ranks
		if r > spec.Endpoints() {
			r = spec.Endpoints()
		}
		side := 16
		for side*side > spec.Endpoints() {
			side /= 2
		}
		row := []float64{}
		for _, motif := range []string{"allreduce", "sweep3d"} {
			for _, adaptive := range []bool{false, true} {
				p := flowsim.DefaultParams(c.seed)
				p.Adaptive = adaptive
				net := flowsim.New(spec.MinEngine, spec.Config(), spec.Graph, spec.UGALMids, p)
				var t float64
				if motif == "allreduce" {
					t = motifs.Allreduce(net, r, 64*1024, 10)
				} else {
					t = motifs.Sweep3D(net, side, side, 4096, 100, 10)
				}
				row = append(row, t/1000)
			}
		}
		fmt.Fprintf(f, "%-12s %-14.1f %-14.1f %-14.1f %-14.1f\n", name, row[0], row[1], row[2], row[3])
	}
	return nil
}

func fig12(c ctx) error {
	f, err := c.file("fig12_bisection.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	specs := c.simSpecs()
	fmt.Fprintf(f, "%-14s %-8s %-8s %-10s\n", "topology", "n", "m", "cutfrac")
	for _, name := range specs {
		spec, err := sim.NewSpec(name)
		if err != nil {
			return err
		}
		frac := partition.CutFraction(spec.Graph, c.seed, partition.Options{})
		fmt.Fprintf(f, "%-14s %-8d %-8d %-10.3f\n", name, spec.Graph.N(), spec.Graph.M(), frac)
	}
	return nil
}

func fig13(c ctx) error {
	f, err := c.file("fig13_bisection_polarstar.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	hi, maxN := 16, 2500
	if c.full {
		hi, maxN = 24, 40000
	}
	fmt.Fprintf(f, "%-6s %-10s %-10s\n", "radix", "ps-iq", "ps-paley")
	for r := 8; r <= hi; r++ {
		row := []string{"-", "-"}
		for ki, kind := range []topo.SupernodeKind{topo.KindIQ, topo.KindPaley} {
			for _, cfg := range moore.PolarStarConfigs(r) {
				if cfg.Kind != kind || int(cfg.Order) > maxN {
					continue
				}
				ps, err := topo.NewPolarStar(cfg.Q, cfg.DPrime, cfg.Kind)
				if err != nil {
					continue
				}
				row[ki] = fmt.Sprintf("%.3f", partition.CutFraction(ps.G, c.seed, partition.Options{}))
				break
			}
		}
		fmt.Fprintf(f, "%-6d %-10s %-10s\n", r, row[0], row[1])
	}
	return nil
}

func fig14(c ctx) error {
	f, err := c.file("fig14_faults.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	trials := 10
	if c.full {
		trials = 100
	}
	chart := &plot.Chart{Title: "Fig 14: avg path length under link failures",
		XLabel: "fraction of failed links", YLabel: "avg shortest path (hops)"}
	for _, name := range c.simSpecs() {
		spec, err := sim.NewSpec(name)
		if err != nil {
			return err
		}
		var fm *obs.FaultSweep
		if c.fig != nil {
			fm = &obs.FaultSweep{Spec: name}
			c.fig.Faults = append(c.fig.Faults, fm)
		}
		tr, err := faults.MedianTrialObs(spec.Graph, faults.Hosts(spec.Hosts), trials, c.seed, faults.DefaultFracs, fm)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "# %s disconnection ratio %.3f\n", name, tr.DisconnectionRatio)
		var xs, ys []float64
		for _, p := range tr.Curve {
			if !p.Connected {
				break
			}
			fmt.Fprintf(f, "%s %.2f diam=%d apl=%.3f\n", name, p.FailFrac, p.Diameter, p.AvgPath)
			xs = append(xs, p.FailFrac)
			ys = append(ys, p.AvgPath)
		}
		chart.Add(name, xs, ys)
		fmt.Fprintln(f)
	}
	return writeChart(c, chart, "fig14_faults.svg")
}

func writeChart(c ctx, chart *plot.Chart, name string) error {
	f, err := c.file(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return chart.WriteSVG(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psfig:", err)
	os.Exit(1)
}
