// pssearch is the design-space search CLI: simulated annealing with
// 2-opt edge swaps over a degree-bounded start graph, delta-evaluated on
// the bit-BFS kernel (internal/search, graph.DeltaStats), reporting the
// best-found ASPL against the Moore-type lower bound.
//
// Everything it prints to stdout and writes to -checkpoint / -best-out
// is a pure function of the flags minus -workers, so equal-seed runs are
// byte-identical at any worker count — the determinism contract shared
// with pssim. -workers is a global parallelism budget: it is split into
// goroutines driving searchers (at most -searchers) times the width of
// each searcher's intra-evaluation pool, which shards the phases of
// every delta Apply/Resync across per-worker scratch arenas with a
// fixed-order serial reduction. Neither level can change a result bit.
// The -metrics artifact is likewise stable once -metrics-timing=false,
// except that its manifest records the worker budget (and its
// searcher×intra split) and explicit command line.
//
// Start graphs:
//
//	-start jellyfish:N,D[,SEED]   random D-regular graph on N vertices
//	-start er:Q                   ER_Q Paley-quadratic diameter-3 graph
//	-start polarstar:Q,D'[,KIND]  PolarStar star product (KIND: iq|paley)
//	-start file:PATH              edge list (psgen/psdump format)
//
// A finished run can be continued: -resume CHECKPOINT restarts from the
// serialized searcher states, and running it with the same -epochs is a
// byte-stable no-op (the CI smoke asserts cmp-equality).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"polarstar/internal/graph"
	"polarstar/internal/moore"
	"polarstar/internal/obs"
	"polarstar/internal/search"
	"polarstar/internal/topo"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pssearch:", err)
	os.Exit(1)
}

// buildStart constructs the start graph from its spec string.
func buildStart(spec string, seed int64) (*graph.Graph, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	args := strings.Split(rest, ",")
	atoi := func(s string) (int, error) { return strconv.Atoi(strings.TrimSpace(s)) }
	switch kind {
	case "jellyfish":
		if len(args) < 2 {
			return nil, fmt.Errorf("jellyfish spec needs N,D")
		}
		n, err := atoi(args[0])
		if err != nil {
			return nil, err
		}
		d, err := atoi(args[1])
		if err != nil {
			return nil, err
		}
		s := seed
		if len(args) >= 3 {
			v, err := atoi(args[2])
			if err != nil {
				return nil, err
			}
			s = int64(v)
		}
		return topo.NewJellyfish(n, d, s)
	case "er":
		q, err := atoi(rest)
		if err != nil {
			return nil, err
		}
		er, err := topo.NewER(q)
		if err != nil {
			return nil, err
		}
		// The polarity graph keeps self-loops at its absolute points;
		// the search wants the standard simple form (absolute points at
		// degree q, the rest at q+1).
		return stripLoops(er.G), nil
	case "polarstar":
		if len(args) < 2 {
			return nil, fmt.Errorf("polarstar spec needs Q,D'")
		}
		q, err := atoi(args[0])
		if err != nil {
			return nil, err
		}
		dPrime, err := atoi(args[1])
		if err != nil {
			return nil, err
		}
		sk := topo.KindIQ
		if len(args) >= 3 {
			switch strings.TrimSpace(args[2]) {
			case "iq":
				sk = topo.KindIQ
			case "paley":
				sk = topo.KindPaley
			default:
				return nil, fmt.Errorf("polarstar kind %q (want iq|paley)", args[2])
			}
		}
		ps, err := topo.NewPolarStar(q, dPrime, sk)
		if err != nil {
			return nil, err
		}
		return ps.G, nil
	case "file":
		f, err := os.Open(rest)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("unknown start spec %q (jellyfish:|er:|polarstar:|file:)", spec)
	}
}

// stripLoops rebuilds g without its self-loop annotations (Edges()
// already excludes them); returns g unchanged if it has none.
func stripLoops(g *graph.Graph) *graph.Graph {
	if g.NumLoops() == 0 {
		return g
	}
	b := graph.NewBuilder(g.Name()+"-simple", g.N())
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func main() {
	var (
		start      = flag.String("start", "jellyfish:64,4", "start graph spec (see doc comment)")
		seed       = flag.Int64("seed", 1, "run seed (feeds every searcher's rng stream)")
		searchers  = flag.Int("searchers", 4, "independent annealers")
		epochs     = flag.Int("epochs", 8, "serial barriers (total; resume continues up to this)")
		iters      = flag.Int("iters", 500, "proposals per searcher per epoch")
		temp       = flag.Float64("temp", -1, "initial Metropolis temperature in cost units (-1: n/2, 0: greedy)")
		cooling    = flag.Float64("cooling", 0.85, "per-epoch temperature factor")
		resync     = flag.Int("resync", 256, "accepted swaps between full resyncs (-1: never)")
		workers    = flag.Int("workers", 1, "parallelism budget, split between searcher goroutines and intra-evaluation pools (never affects results)")
		checkpoint = flag.String("checkpoint", "", "write the final search state to this JSON file")
		resume     = flag.String("resume", "", "resume from a checkpoint written by -checkpoint")
		bestOut    = flag.String("best-out", "", "write the best graph as an edge list to this file")
		mflags     = obs.Flags()
	)
	flag.Parse()

	var (
		eng       *search.Engine
		startASPL float64
		err       error
	)
	p := search.Params{
		Seed:        *seed,
		Searchers:   *searchers,
		Epochs:      *epochs,
		Iters:       *iters,
		InitTemp:    *temp,
		Cooling:     *cooling,
		ResyncEvery: *resync,
		Workers:     *workers,
		TimeEvals:   mflags.Enabled() && *mflags.Timing,
	}
	if *resume != "" {
		cp, err := search.ReadCheckpoint(*resume)
		if err != nil {
			fail(err)
		}
		cp.Params.TimeEvals = p.TimeEvals
		eng, err = search.Restore(cp, *workers, *epochs)
		if err != nil {
			fail(err)
		}
	} else {
		g, err := buildStart(*start, *seed)
		if err != nil {
			fail(err)
		}
		startASPL = g.AllPairsStats().AvgPath
		if *temp < 0 {
			p.InitTemp = float64(g.N()) / 2
		}
		eng, err = search.New(g, p)
		if err != nil {
			fail(err)
		}
	}

	t0 := time.Now()
	res := eng.Run()
	wall := time.Since(t0)

	n := eng.N()
	degree := res.Best.MaxDegree()
	bound, _ := moore.ASPLLowerBound(n, degree)
	gap, _ := moore.ASPLGap(res.Stats.AvgPath, n, degree)

	fmt.Printf("pssearch: %s n=%d degree=%d searchers=%d epochs=%d iters=%d seed=%d\n",
		eng.Name(), n, degree, eng.Params().Searchers, eng.Epoch(), eng.Params().Iters, eng.Params().Seed)
	if startASPL > 0 {
		fmt.Printf("pssearch: start aspl=%.6f\n", startASPL)
	}
	fmt.Printf("pssearch: best cost=%d aspl=%.6f diameter=%d connected=%v\n",
		res.BestCost, res.Stats.AvgPath, res.Stats.Diameter, res.Stats.Connected)
	fmt.Printf("pssearch: lower bound=%.6f gap=%.3f%%\n", bound, gap*100)
	fmt.Printf("pssearch: proposed=%d accepted=%d invalid=%d evals=%d avg-dirty=%.1f resyncs=%d drift=%d\n",
		res.Counters.Proposed, res.Counters.Accepted, res.Counters.Invalid, res.Counters.Evals,
		avgDirty(res.Counters), res.Counters.Resyncs, res.Counters.Drift)
	fmt.Fprintf(os.Stderr, "pssearch: wall %.2fs (%.0f swaps/sec)\n",
		wall.Seconds(), float64(res.Counters.Evals)/wall.Seconds())
	if res.Counters.Drift > 0 {
		fail(fmt.Errorf("delta state drifted from full recomputation %d times", res.Counters.Drift))
	}

	if *checkpoint != "" {
		if err = search.WriteCheckpoint(*checkpoint, eng.Checkpoint()); err != nil {
			fail(err)
		}
	}
	if *bestOut != "" {
		f, err := os.Create(*bestOut)
		if err != nil {
			fail(err)
		}
		if err := res.Best.WriteEdgeList(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	if mflags.Enabled() {
		run := obs.NewRun("pssearch")
		run.Manifest.Spec = *start
		run.Manifest.Seed = eng.Params().Seed
		run.Manifest.Workers = *workers
		run.Manifest.SearcherWorkers, run.Manifest.IntraWorkers = eng.WorkerSplit()
		sr := &obs.SearchRun{
			Graph:        eng.Name(),
			N:            n,
			Degree:       degree,
			Seed:         eng.Params().Seed,
			Searchers:    eng.Params().Searchers,
			Epochs:       eng.Epoch(),
			Iters:        eng.Params().Iters,
			Proposed:     obs.Counter(res.Counters.Proposed),
			Accepted:     obs.Counter(res.Counters.Accepted),
			Invalid:      obs.Counter(res.Counters.Invalid),
			Evals:        obs.Counter(res.Counters.Evals),
			DirtyTotal:   obs.Counter(res.Counters.DirtyTotal),
			FullRebuilds: obs.Counter(res.Counters.FullRebuilds),
			Resyncs:      obs.Counter(res.Counters.Resyncs),
			Drift:        obs.Counter(res.Counters.Drift),
			DistsBytes:   obs.Counter(res.Counters.DistsBytes),
			AvgDirty:     avgDirty(res.Counters),
			BestCost:     res.BestCost,
			BestASPL:     res.Stats.AvgPath,
			BestDiameter: res.Stats.Diameter,
			Connected:    res.Stats.Connected,
			StartASPL:    startASPL,
			LowerBound:   bound,
			GapPct:       gap * 100,
		}
		if res.Counters.Proposed > 0 {
			sr.AcceptRate = float64(res.Counters.Accepted) / float64(res.Counters.Proposed)
		}
		for _, ep := range res.Trajectory {
			sr.Trajectory = append(sr.Trajectory, obs.SearchEpoch(ep))
		}
		if *mflags.Timing {
			sr.SwapsPerSec = float64(res.Counters.Evals) / wall.Seconds()
			sr.EvalNS = res.EvalNS
		}
		run.Search = sr
		if err := mflags.Write(run); err != nil {
			fail(err)
		}
	}
}

func avgDirty(c search.Counters) float64 {
	if c.Evals == 0 {
		return 0
	}
	return float64(c.DirtyTotal) / float64(c.Evals)
}
