// pssim runs the synthetic-traffic latency-load experiments of §9
// (Figs 9 and 10) on the cycle-level simulator.
//
// Usage:
//
//	pssim -spec ps-iq -routing min -pattern uniform
//	pssim -spec df -routing ugal -pattern adversarial -loads 0.05,0.1,0.2
//	pssim -spec bf-small -cycles 4000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"polarstar/internal/obs"
	"polarstar/internal/plot"
	"polarstar/internal/prof"
	"polarstar/internal/sim"
)

func main() {
	var (
		specName = flag.String("spec", "ps-iq", "topology spec: "+strings.Join(sim.Table3Names, "|")+" (+\"-small\")")
		routing  = flag.String("routing", "min", "min|ugal|ugal-g|mp-min|mp-ugal")
		lanes    = flag.Int("lanes", 0, "spanning-tree lanes for mp-min/mp-ugal (0: engine default)")
		pattern  = flag.String("pattern", "uniform", "uniform|permutation|bitshuffle|bitreverse|adversarial")
		loadsArg = flag.String("loads", "", "comma-separated offered loads (default standard ladder)")
		cycles   = flag.Int("cycles", 0, "override measurement cycles (warmup=cycles/2, drain=3*cycles/2)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		svgOut   = flag.String("svg", "", "also write the latency-load curve as an SVG file")
		workers  = flag.Int("workers", 0, "engine shard workers per run (0: auto-split cores between load points and shards; results are identical for any value)")

		faultPlan    = flag.String("fault-plan", "", "live fault plan file: one '<cycle> link-down|link-up|router-down|router-up <args>' per line")
		mtbf         = flag.Float64("mtbf", 0, "additionally generate random link failures with this mean-cycles-between-failures (0: none)")
		faultRepair  = flag.Int64("fault-repair", 0, "repair delay in cycles for -mtbf failures (0: permanent)")
		repairDelay  = flag.Int64("repair-delay", 0, "table-reconvergence stall in cycles after each applied fault event (0: instant repair)")
		retries      = flag.Int("retries", 0, "max source retries per packet under faults (0: default policy)")
		retryBackoff = flag.Int64("retry-backoff", 0, "base retry backoff in cycles, doubling per retry (0: default)")
		retryCap     = flag.Int64("retry-cap", 0, "retry backoff cap in cycles (0: default)")
		pktMaxAge    = flag.Int64("pkt-max-age", 0, "per-packet age limit in cycles under faults (0: default; <0: unlimited)")
		met          = obs.Flags()
	)
	flag.Parse()
	defer prof.Start()()

	spec, err := sim.NewSpec(*specName)
	if err != nil {
		fatal(err)
	}
	mode := sim.MIN
	switch *routing {
	case "min":
	case "ugal":
		mode = sim.UGALMode
	case "ugal-g":
		mode = sim.UGALGMode
	case "mp-min":
		mode = sim.MPMINMode
	case "mp-ugal":
		mode = sim.MPUGALMode
	default:
		fatal(fmt.Errorf("unknown routing %q", *routing))
	}
	loads := sim.DefaultLoads
	if *loadsArg != "" {
		loads = nil
		for _, part := range strings.Split(*loadsArg, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -loads: %v", err))
			}
			loads = append(loads, v)
		}
	}
	params := sim.DefaultParams(*seed)
	params.Workers = *workers
	params.Lanes = *lanes
	params.MetricsInterval = *met.Interval
	if *cycles > 0 {
		params.Warmup = *cycles / 2
		params.Measure = *cycles
		params.Drain = 3 * *cycles / 2
	}
	if *faultPlan != "" || *mtbf > 0 {
		horizon := int64(params.Warmup + params.Measure + params.Drain)
		plan, err := sim.LoadPlan(*faultPlan, *mtbf, *faultRepair, spec.Graph, horizon, *seed)
		if err != nil {
			fatal(err)
		}
		params.Plan = plan
		params.Retry = retryPolicy(*retries, *retryBackoff, *retryCap, *pktMaxAge)
		params.RepairDelay = *repairDelay
	}
	var run *obs.Run
	var sm *obs.SimSweep
	if met.Enabled() {
		run = obs.NewRun("pssim")
		run.Manifest.Spec = spec.Name
		run.Manifest.Routing = mode.String()
		run.Manifest.Pattern = *pattern
		run.Manifest.Seed = *seed
		run.Manifest.Workers = *workers
		if params.Plan != nil {
			run.Manifest.FaultPlan = faultManifest(params, *faultPlan, *mtbf, *faultRepair)
		}
		sm = obs.NewSimSweep(spec.Name, mode.String(), *pattern, len(loads))
		run.Sim = sm
	}
	fmt.Printf("# %s: %d routers, %d endpoints\n", spec.Name, spec.Graph.N(), spec.Endpoints())
	var res sim.SweepResult
	prof.Task(func() {
		res, err = sim.SweepObs(spec, mode, *pattern, loads, params, sm)
	}, "phase", "sweep", "spec", spec.Name)
	if err != nil {
		fatal(err)
	}
	sim.WriteSweep(os.Stdout, res)
	fmt.Printf("# saturation load: %.3f\n", res.SaturationLoad())
	if met.Enabled() {
		if err := met.Write(run); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote metrics %s\n", *met.Path)
	}

	if *svgOut != "" {
		chart := &plot.Chart{
			Title:  fmt.Sprintf("%s %s %s", spec.Name, res.Routing, res.Pattern),
			XLabel: "offered load (fraction of injection bandwidth)",
			YLabel: "average packet latency (cycles)",
		}
		var xs, ys []float64
		for _, p := range res.Points {
			if p.Saturated {
				break // the latency-load curve ends at saturation
			}
			xs = append(xs, p.Load)
			ys = append(ys, p.AvgLatency)
		}
		chart.Add(spec.Name, xs, ys)
		f, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := chart.WriteSVG(f); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s\n", *svgOut)
	}
}

// retryPolicy layers the explicitly set retry flags over the default
// policy (0 keeps each default; -pkt-max-age < 0 disables the age limit).
func retryPolicy(retries int, backoff, cap, maxAge int64) sim.RetryPolicy {
	rp := sim.DefaultRetryPolicy()
	if retries > 0 {
		rp.MaxRetries = retries
	}
	if backoff > 0 {
		rp.BackoffBase = backoff
	}
	if cap > 0 {
		rp.BackoffCap = cap
	}
	if maxAge > 0 {
		rp.MaxAge = maxAge
	} else if maxAge < 0 {
		rp.MaxAge = 0
	}
	return rp
}

// faultManifest records the fault plan (canonical hash + generator
// parameters) and the effective retry policy, so a degraded run is
// reproducible from its artifact alone.
func faultManifest(params sim.Params, source string, mtbf float64, repair int64) *obs.FaultPlan {
	return &obs.FaultPlan{
		Hash:        fmt.Sprintf("%016x", params.Plan.Hash()),
		Events:      len(params.Plan.Events),
		Source:      source,
		MTBF:        mtbf,
		Repair:      repair,
		RepairDelay: params.RepairDelay,
		MaxRetries:  params.Retry.MaxRetries,
		BackoffBase: params.Retry.BackoffBase,
		BackoffCap:  params.Retry.BackoffCap,
		MaxAge:      params.Retry.MaxAge,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pssim:", err)
	os.Exit(1)
}
