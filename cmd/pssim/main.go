// pssim runs the synthetic-traffic latency-load experiments of §9
// (Figs 9 and 10) on the cycle-level simulator.
//
// Usage:
//
//	pssim -spec ps-iq -routing min -pattern uniform
//	pssim -spec df -routing ugal -pattern adversarial -loads 0.05,0.1,0.2
//	pssim -spec bf-small -cycles 4000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"polarstar/internal/obs"
	"polarstar/internal/plot"
	"polarstar/internal/prof"
	"polarstar/internal/sim"
)

func main() {
	var (
		specName = flag.String("spec", "ps-iq", "topology spec: "+strings.Join(sim.Table3Names, "|")+" (+\"-small\")")
		routing  = flag.String("routing", "min", "min|ugal")
		pattern  = flag.String("pattern", "uniform", "uniform|permutation|bitshuffle|bitreverse|adversarial")
		loadsArg = flag.String("loads", "", "comma-separated offered loads (default standard ladder)")
		cycles   = flag.Int("cycles", 0, "override measurement cycles (warmup=cycles/2, drain=3*cycles/2)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		svgOut   = flag.String("svg", "", "also write the latency-load curve as an SVG file")
		workers  = flag.Int("workers", 0, "engine shard workers per run (0: auto-split cores between load points and shards; results are identical for any value)")
		met      = obs.Flags()
	)
	flag.Parse()
	defer prof.Start()()

	spec, err := sim.NewSpec(*specName)
	if err != nil {
		fatal(err)
	}
	mode := sim.MIN
	if *routing == "ugal" {
		mode = sim.UGALMode
	} else if *routing != "min" {
		fatal(fmt.Errorf("unknown routing %q", *routing))
	}
	loads := sim.DefaultLoads
	if *loadsArg != "" {
		loads = nil
		for _, part := range strings.Split(*loadsArg, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -loads: %v", err))
			}
			loads = append(loads, v)
		}
	}
	params := sim.DefaultParams(*seed)
	params.Workers = *workers
	params.MetricsInterval = *met.Interval
	if *cycles > 0 {
		params.Warmup = *cycles / 2
		params.Measure = *cycles
		params.Drain = 3 * *cycles / 2
	}
	var run *obs.Run
	var sm *obs.SimSweep
	if met.Enabled() {
		run = obs.NewRun("pssim")
		run.Manifest.Spec = spec.Name
		run.Manifest.Routing = mode.String()
		run.Manifest.Pattern = *pattern
		run.Manifest.Seed = *seed
		run.Manifest.Workers = *workers
		sm = obs.NewSimSweep(spec.Name, mode.String(), *pattern, len(loads))
		run.Sim = sm
	}
	fmt.Printf("# %s: %d routers, %d endpoints\n", spec.Name, spec.Graph.N(), spec.Endpoints())
	var res sim.SweepResult
	prof.Task(func() {
		res, err = sim.SweepObs(spec, mode, *pattern, loads, params, sm)
	}, "phase", "sweep", "spec", spec.Name)
	if err != nil {
		fatal(err)
	}
	sim.WriteSweep(os.Stdout, res)
	fmt.Printf("# saturation load: %.3f\n", res.SaturationLoad())
	if met.Enabled() {
		if err := met.Write(run); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote metrics %s\n", *met.Path)
	}

	if *svgOut != "" {
		chart := &plot.Chart{
			Title:  fmt.Sprintf("%s %s %s", spec.Name, res.Routing, res.Pattern),
			XLabel: "offered load (fraction of injection bandwidth)",
			YLabel: "average packet latency (cycles)",
		}
		var xs, ys []float64
		for _, p := range res.Points {
			if p.Saturated {
				break // the latency-load curve ends at saturation
			}
			xs = append(xs, p.Load)
			ys = append(ys, p.AvgLatency)
		}
		chart.Add(spec.Name, xs, ys)
		f, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := chart.WriteSVG(f); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s\n", *svgOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pssim:", err)
	os.Exit(1)
}
