// psgen generates network topologies and writes them as edge lists.
//
// Usage:
//
//	psgen -topo polarstar -q 11 -dprime 3 -kind iq            # PolarStar
//	psgen -topo bundlefly -q 7 -dprime 4 -o bf.edges          # Bundlefly
//	psgen -topo dragonfly -a 12 -h 6                          # Dragonfly
//	psgen -topo hyperx -dims 9x9x8                            # 3-D HyperX
//	psgen -topo er -q 11 | head                               # ER_11 factor
//	psgen -topo stats -q 11 -dprime 3 -kind iq                # print stats only
//	psgen -topo polarstar -kind iq -dprime 3 -sweep 5-16      # stats per q
//
// -sweep runs the -stats analysis for every q in the given range. The
// sweep distributes topology points over a worker pool, each worker
// reusing one bit-parallel BFS scratch arena across its graphs; lines
// are printed in q order regardless of worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"polarstar"
)

func main() {
	var (
		topoName = flag.String("topo", "polarstar", "polarstar|er|iq|paley|bundlefly|mms|dragonfly|hyperx|fattree|megafly|kautz|jellyfish|lps")
		q        = flag.Int("q", 11, "field order / MMS parameter / LPS q")
		dPrime   = flag.Int("dprime", 3, "supernode degree")
		kindName = flag.String("kind", "iq", "supernode kind: iq|paley|bdf|complete")
		a        = flag.Int("a", 12, "dragonfly/megafly group size")
		h        = flag.Int("h", 6, "dragonfly global links per router")
		rho      = flag.Int("rho", 8, "megafly spine global arity")
		p        = flag.Int("p", 23, "fat-tree half radix / LPS p / jellyfish degree")
		n        = flag.Int("n", 1064, "jellyfish order / kautz word length")
		dims     = flag.String("dims", "9x9x8", "hyperx dimensions, e.g. 9x9x8")
		seed     = flag.Int64("seed", 1, "seed for randomized topologies")
		out      = flag.String("o", "", "output file (default stdout)")
		stats    = flag.Bool("stats", false, "print order/degree/diameter instead of edges")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT instead of an edge list")
		sweep    = flag.String("sweep", "", `q-sweep range "lo-hi": print -stats lines for every q`)
	)
	flag.Parse()

	kind, err := parseKind(*kindName)
	if err != nil {
		fatal(err)
	}
	if *sweep != "" {
		if err := runSweep(*sweep, *topoName, kind, *dPrime, *a, *h, *rho, *p, *n, *dims, *seed); err != nil {
			fatal(err)
		}
		return
	}
	g, err := build(*topoName, kind, *q, *dPrime, *a, *h, *rho, *p, *n, *dims, *seed)
	if err != nil {
		fatal(err)
	}
	if *stats {
		s := g.AllPairsStats()
		fmt.Print(statsLine(g, s))
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *dot {
		if err := g.WriteDOT(w, nil); err != nil {
			fatal(err)
		}
		return
	}
	if err := g.WriteEdgeList(w); err != nil {
		fatal(err)
	}
}

func statsLine(g *polarstar.Graph, s polarstar.PathStats) string {
	return fmt.Sprintf("%s: n=%d m=%d maxdeg=%d diameter=%d avgpath=%.3f girth=%d connected=%v\n",
		g.Name(), g.N(), g.M(), g.MaxDegree(), s.Diameter, s.AvgPath, g.Girth(), s.Connected)
}

// runSweep prints a -stats line for every q in the range. Points are
// strided over a worker pool; each worker keeps one BitBFSScratch for
// all of its graphs, and output is assembled in q order.
func runSweep(rng, topoName string, kind polarstar.SupernodeKind, dPrime, a, h, rho, p, n int, dims string, seed int64) error {
	lo, hi, err := parseRange(rng)
	if err != nil {
		return err
	}
	lines := make([]string, hi-lo+1)
	workers := min(runtime.GOMAXPROCS(0), len(lines))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var scratch polarstar.BitBFSScratch
			for i := w; i < len(lines); i += workers {
				q := lo + i
				g, err := build(topoName, kind, q, dPrime, a, h, rho, p, n, dims, seed)
				if err != nil {
					lines[i] = fmt.Sprintf("q=%d: skipped (%v)\n", q, err)
					continue
				}
				lines[i] = statsLine(g, g.AllPairsStatsSerial(&scratch))
			}
		}(w)
	}
	wg.Wait()
	for _, line := range lines {
		fmt.Print(line)
	}
	return nil
}

func parseRange(s string) (lo, hi int, err error) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf(`bad -sweep %q: want "lo-hi"`, s)
	}
	if lo, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, fmt.Errorf("bad -sweep %q: %v", s, err)
	}
	if hi, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, fmt.Errorf("bad -sweep %q: %v", s, err)
	}
	if lo < 1 || hi < lo {
		return 0, 0, fmt.Errorf("bad -sweep %q: need 1 <= lo <= hi", s)
	}
	return lo, hi, nil
}

func build(name string, kind polarstar.SupernodeKind, q, dPrime, a, h, rho, p, n int, dims string, seed int64) (*polarstar.Graph, error) {
	switch name {
	case "polarstar":
		ps, err := polarstar.New(q, dPrime, kind)
		if err != nil {
			return nil, err
		}
		return ps.G, nil
	case "er":
		er, err := polarstar.NewER(q)
		if err != nil {
			return nil, err
		}
		return er.G, nil
	case "iq", "paley", "bdf", "complete":
		k, _ := parseKind(name)
		s, err := polarstar.NewSupernode(k, dPrime)
		if err != nil {
			return nil, err
		}
		return s.G, nil
	case "bundlefly":
		bf, err := polarstar.NewBundlefly(q, dPrime)
		if err != nil {
			return nil, err
		}
		return bf.G, nil
	case "mms":
		m, err := polarstar.NewMMS(q)
		if err != nil {
			return nil, err
		}
		return m.G, nil
	case "dragonfly":
		df, err := polarstar.NewDragonfly(a, h)
		if err != nil {
			return nil, err
		}
		return df.G, nil
	case "hyperx":
		var ds []int
		for _, part := range strings.Split(dims, "x") {
			v, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("bad -dims %q: %v", dims, err)
			}
			ds = append(ds, v)
		}
		hx, err := polarstar.NewHyperX(ds...)
		if err != nil {
			return nil, err
		}
		return hx.G, nil
	case "fattree":
		ft, err := polarstar.NewFatTree(p)
		if err != nil {
			return nil, err
		}
		return ft.G, nil
	case "megafly":
		mf, err := polarstar.NewMegafly(rho, a)
		if err != nil {
			return nil, err
		}
		return mf.G, nil
	case "kautz":
		k, err := polarstar.NewKautz(p, n)
		if err != nil {
			return nil, err
		}
		return k.G, nil
	case "jellyfish":
		return polarstar.NewJellyfish(n, p, seed)
	case "lps":
		l, err := polarstar.NewLPS(p, q)
		if err != nil {
			return nil, err
		}
		return l.G, nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func parseKind(s string) (polarstar.SupernodeKind, error) {
	switch s {
	case "iq":
		return polarstar.IQ, nil
	case "paley":
		return polarstar.Paley, nil
	case "bdf":
		return polarstar.BDF, nil
	case "complete":
		return polarstar.Complete, nil
	}
	return 0, fmt.Errorf("unknown supernode kind %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psgen:", err)
	os.Exit(1)
}
