// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index E1..E19).
//
// By default every benchmark runs a scaled-down configuration so that
// `go test -bench=.` completes on a laptop; set POLARSTAR_FULL=1 to run
// the Table 3 / full-radix-sweep configurations the paper uses. Key
// experiment outcomes are attached as custom benchmark metrics.
package polarstar_test

import (
	"fmt"
	"math"
	"os"
	"testing"

	"polarstar/internal/faults"
	"polarstar/internal/flowsim"
	"polarstar/internal/moore"
	"polarstar/internal/motifs"
	"polarstar/internal/partition"
	"polarstar/internal/sim"
	"polarstar/internal/topo"
)

func fullScale() bool { return os.Getenv("POLARSTAR_FULL") == "1" }

// simSpecs returns the topology set of the synthetic-traffic figures.
func simSpecs() []string {
	if fullScale() {
		return []string{"ps-iq", "ps-pal", "bf", "hx", "df", "sf", "mf", "ft"}
	}
	return []string{"ps-iq-small", "ps-pal-small", "bf-small", "hx-small", "df-small", "sf-small", "mf-small", "ft-small"}
}

func simParams(seed int64) sim.Params {
	p := sim.DefaultParams(seed)
	if !fullScale() {
		p.Warmup, p.Measure, p.Drain = 1000, 2000, 4000
	}
	return p
}

func simLoads() []float64 {
	if fullScale() {
		return sim.DefaultLoads
	}
	return []float64{0.1, 0.3, 0.5, 0.7}
}

// runFig9 runs one (routing, pattern) panel over all topologies and
// reports each topology's saturation load as a metric.
func runFig9(b *testing.B, mode sim.RoutingMode, pattern string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, name := range simSpecs() {
			spec, err := sim.NewSpec(name)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Sweep(spec, mode, pattern, simLoads(), simParams(1))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(res.SaturationLoad(), name+"_satload")
			}
		}
	}
}

// --- E1: Fig 1, diameter-3 scalability vs the Moore bound. ---

func BenchmarkFig01ScalabilityDiam3(b *testing.B) {
	lo, hi := 8, 64
	if fullScale() {
		hi = 128
	}
	var rows []moore.Fig1Row
	for i := 0; i < b.N; i++ {
		rows = moore.Fig1(lo, hi)
	}
	// Report the radix-64 Moore efficiencies (the data labels of Fig 1).
	last := rows[len(rows)-1]
	b.ReportMetric(moore.Efficiency(last.PolarStar.Order, last.Radix, 3), "polarstar_eff")
	b.ReportMetric(moore.Efficiency(last.Bundlefly.Order, last.Radix, 3), "bundlefly_eff")
	b.ReportMetric(moore.Efficiency(last.Dragonfly.Order, last.Radix, 3), "dragonfly_eff")
	b.ReportMetric(moore.Efficiency(last.HyperX3D.Order, last.Radix, 3), "hyperx_eff")
}

// --- E2: Fig 4, diameter-2 factor-graph families. ---

func BenchmarkFig04Diameter2Families(b *testing.B) {
	var rows []moore.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = moore.Fig4(8, 64)
	}
	// ER approaches the diameter-2 Moore bound asymptotically.
	for _, r := range rows {
		if r.Radix == 50 { // q = 49
			b.ReportMetric(float64(r.ER.Order)/float64(r.MooreBound), "er_eff_radix50")
		}
	}
}

// --- E3: Fig 7, the PolarStar design space. ---

func BenchmarkFig07DesignSpace(b *testing.B) {
	lo, hi := 8, 64
	if fullScale() {
		hi = 128
	}
	total := 0
	for i := 0; i < b.N; i++ {
		total = 0
		for r := lo; r <= hi; r++ {
			total += len(moore.PolarStarConfigs(r))
		}
	}
	b.ReportMetric(float64(total), "feasible_configs")
}

// --- E5: Table 2, supernode families. ---

func BenchmarkTable2Supernodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			kind topo.SupernodeKind
			d    int
		}{{topo.KindIQ, 8}, {topo.KindIQ, 11}, {topo.KindPaley, 6}, {topo.KindBDF, 9}, {topo.KindComplete, 9}} {
			s, err := topo.NewSupernode(c.kind, c.d)
			if err != nil {
				b.Fatal(err)
			}
			if err := topo.VerifySupernode(c.kind, s, c.d); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E6: Table 3, the simulated configurations. ---

func BenchmarkTable3Construction(b *testing.B) {
	names := sim.Table3Names
	routers := map[string]int{}
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			spec, err := sim.NewSpec(name)
			if err != nil {
				b.Fatal(err)
			}
			routers[name] = spec.Graph.N()
		}
	}
	for _, name := range names {
		b.ReportMetric(float64(routers[name]), name+"_routers")
	}
}

// --- E7..E11: Fig 9, synthetic traffic latency-load panels. ---

func BenchmarkFig09UniformMIN(b *testing.B)  { runFig9(b, sim.MIN, "uniform") }
func BenchmarkFig09UniformUGAL(b *testing.B) { runFig9(b, sim.UGALMode, "uniform") }
func BenchmarkFig09Permutation(b *testing.B) { runFig9(b, sim.UGALMode, "permutation") }
func BenchmarkFig09BitReverse(b *testing.B)  { runFig9(b, sim.UGALMode, "bitreverse") }
func BenchmarkFig09BitShuffle(b *testing.B)  { runFig9(b, sim.UGALMode, "bitshuffle") }

// --- E12: Fig 10, adversarial traffic (MIN and UGAL panels). ---

func BenchmarkFig10AdversarialMIN(b *testing.B)  { runFig9(b, sim.MIN, "adversarial") }
func BenchmarkFig10AdversarialUGAL(b *testing.B) { runFig9(b, sim.UGALMode, "adversarial") }

// --- E13/E14: Fig 11, real-world motifs. ---

func motifSpecs() []string {
	if fullScale() {
		return []string{"ps-iq", "df", "hx", "ft"}
	}
	return []string{"ps-iq-small", "df-small", "hx-small", "ft-small"}
}

func BenchmarkFig11Allreduce(b *testing.B) {
	ranks, iters := 256, 10
	if fullScale() {
		ranks = 4096
	}
	for i := 0; i < b.N; i++ {
		for _, name := range motifSpecs() {
			spec, err := sim.NewSpec(name)
			if err != nil {
				b.Fatal(err)
			}
			r := ranks
			if r > spec.Endpoints() {
				r = spec.Endpoints()
			}
			for _, adaptive := range []bool{false, true} {
				p := flowsim.DefaultParams(1)
				p.Adaptive = adaptive
				net := flowsim.New(spec.MinEngine, spec.Config(), spec.Graph, spec.UGALMids, p)
				t := motifs.Allreduce(net, r, 64*1024, iters)
				if i == 0 {
					suffix := "_min_us"
					if adaptive {
						suffix = "_ugal_us"
					}
					b.ReportMetric(t/1000, name+suffix)
				}
			}
		}
	}
}

func BenchmarkFig11Sweep3D(b *testing.B) {
	side, iters := 16, 10
	if fullScale() {
		side = 64
	}
	for i := 0; i < b.N; i++ {
		for _, name := range motifSpecs() {
			spec, err := sim.NewSpec(name)
			if err != nil {
				b.Fatal(err)
			}
			s := side
			for s*s > spec.Endpoints() {
				s /= 2
			}
			for _, adaptive := range []bool{false, true} {
				p := flowsim.DefaultParams(1)
				p.Adaptive = adaptive
				net := flowsim.New(spec.MinEngine, spec.Config(), spec.Graph, spec.UGALMids, p)
				t := motifs.Sweep3D(net, s, s, 4096, 100, iters)
				if i == 0 {
					suffix := "_min_us"
					if adaptive {
						suffix = "_ugal_us"
					}
					b.ReportMetric(t/1000, name+suffix)
				}
			}
		}
	}
}

// --- E15: Fig 12, bisection across topologies. ---

func BenchmarkFig12Bisection(b *testing.B) {
	specs := []string{"ps-iq", "ps-pal", "bf", "df", "hx", "mf"}
	if !fullScale() {
		specs = []string{"ps-iq-small", "ps-pal-small", "bf-small", "df-small", "hx-small", "mf-small"}
	}
	for i := 0; i < b.N; i++ {
		for _, name := range specs {
			spec, err := sim.NewSpec(name)
			if err != nil {
				b.Fatal(err)
			}
			f := partition.CutFraction(spec.Graph, 1, partition.Options{})
			if i == 0 {
				b.ReportMetric(f, name+"_cutfrac")
			}
		}
	}
}

// --- E16: Fig 13, PolarStar bisection IQ vs Paley across radixes. ---

func BenchmarkFig13BisectionPolarStar(b *testing.B) {
	lo, hi, maxN := 8, 16, 2000
	if fullScale() {
		hi, maxN = 24, 40000
	}
	sums := map[string][]float64{}
	for i := 0; i < b.N; i++ {
		for r := lo; r <= hi; r++ {
			for _, kind := range []topo.SupernodeKind{topo.KindIQ, topo.KindPaley} {
				for _, c := range moore.PolarStarConfigs(r) {
					if c.Kind != kind || int(c.Order) > maxN {
						continue
					}
					ps, err := topo.NewPolarStar(c.Q, c.DPrime, c.Kind)
					if err != nil {
						continue
					}
					f := partition.CutFraction(ps.G, 1, partition.Options{})
					if i == 0 {
						sums[kind.String()] = append(sums[kind.String()], f)
					}
					break
				}
			}
		}
	}
	for kind, fs := range sums {
		avg := 0.0
		for _, f := range fs {
			avg += f
		}
		b.ReportMetric(avg/float64(len(fs)), fmt.Sprintf("%s_avg_cutfrac", kind))
	}
}

// --- E17: Fig 14, fault tolerance. ---

func BenchmarkFig14FaultTolerance(b *testing.B) {
	trials := 10
	specs := []string{"ps-iq-small", "bf-small", "df-small", "hx-small"}
	if fullScale() {
		trials = 100
		specs = []string{"ps-iq", "bf", "df", "hx"}
	}
	for i := 0; i < b.N; i++ {
		for _, name := range specs {
			spec, err := sim.NewSpec(name)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := faults.MedianTrial(spec.Graph, faults.Hosts(spec.Hosts), trials, 1, faults.DefaultFracs)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(tr.DisconnectionRatio, name+"_disconnect")
			}
		}
	}
}

// --- E18: Equations (1) and (2). ---

func BenchmarkEq1Eq2ClosedForms(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for d := 8; d <= 128; d++ {
			q := moore.OptimalQ(d)
			if dev := math.Abs(q - 2*float64(d)/3); dev > worst {
				worst = dev
			}
		}
	}
	b.ReportMetric(worst, "max_dev_from_2d3")
	b.ReportMetric(moore.MaxOrderIQ(64), "eq2_at_64")
}

// --- E19: §1.3 headline geometric-mean scale ratios. ---

func BenchmarkHeadlineScaleRatios(b *testing.B) {
	var h moore.HeadlineRatios
	for i := 0; i < b.N; i++ {
		h = moore.Headline(8, 128)
	}
	b.ReportMetric(h.VsBundlefly, "vs_bundlefly")
	b.ReportMetric(h.VsDragonfly, "vs_dragonfly")
	b.ReportMetric(h.VsHyperX, "vs_hyperx")
}

// --- Ablations (DESIGN.md design choices). ---

// BenchmarkAblationAnalyticVsTableRouting compares the §9.2 analytic
// router against table-based routing on the Table 3 PolarStar: the
// analytic router trades a small per-path cost for O(q²+d'²) state.
func BenchmarkAblationAnalyticVsTableRouting(b *testing.B) {
	ps := topo.MustNewPolarStar(11, 3, topo.KindIQ)
	spec, _ := sim.NewSpec("ps-iq")
	rng := newRng(1)
	b.Run("analytic", func(b *testing.B) {
		eng := spec.MinEngine
		for i := 0; i < b.N; i++ {
			src, dst := rng.Intn(ps.G.N()), rng.Intn(ps.G.N())
			_ = eng.Route(src, dst, rng)
		}
	})
	b.Run("table", func(b *testing.B) {
		eng := newTableEngine(ps)
		for i := 0; i < b.N; i++ {
			src, dst := rng.Intn(ps.G.N()), rng.Intn(ps.G.N())
			_ = eng.Route(src, dst, rng)
		}
	})
}

// BenchmarkAblationSupernodeKinds compares construction cost and scale
// across supernode families at equal radix.
func BenchmarkAblationSupernodeKinds(b *testing.B) {
	cases := []struct {
		kind topo.SupernodeKind
		q, d int
	}{
		{topo.KindIQ, 11, 3},
		{topo.KindPaley, 8, 6},
		{topo.KindBDF, 11, 3},
		{topo.KindComplete, 11, 3},
	}
	for _, c := range cases {
		b.Run(c.kind.String(), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				ps, err := topo.NewPolarStar(c.q, c.d, c.kind)
				if err != nil {
					b.Fatal(err)
				}
				n = ps.G.N()
			}
			b.ReportMetric(float64(n), "routers")
		})
	}
}

// BenchmarkAblationStarProduct measures the star-product construction
// itself at growing scale.
func BenchmarkAblationStarProduct(b *testing.B) {
	for _, q := range []int{5, 11, 19} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = topo.MustNewPolarStar(q, 3, topo.KindIQ)
			}
		})
	}
}

// BenchmarkAblationUGALVariants compares UGAL-L (local first-hop queue,
// the paper's configuration) against the idealized global-information
// UGAL-G on adversarial traffic.
func BenchmarkAblationUGALVariants(b *testing.B) {
	spec := sim.MustNewSpec("ps-iq-small")
	loads := []float64{0.1, 0.3}
	params := simParams(1)
	for _, mode := range []sim.RoutingMode{sim.UGALMode, sim.UGALGMode} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Sweep(spec, mode, "adversarial", loads, params)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.SaturationLoad(), "satload")
					b.ReportMetric(res.Points[0].AvgLatency, "latency_at_0.1")
				}
			}
		})
	}
}

// BenchmarkAblationBisectionSeeds measures how the bisection estimate
// improves with the number of multilevel random starts.
func BenchmarkAblationBisectionSeeds(b *testing.B) {
	spec := sim.MustNewSpec("bf-small")
	for _, seeds := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("seeds=%d", seeds), func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				f = partition.CutFraction(spec.Graph, 1, partition.Options{Seeds: seeds})
			}
			b.ReportMetric(f, "cutfrac")
		})
	}
}
