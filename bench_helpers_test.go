package polarstar_test

import (
	"math/rand"

	"polarstar/internal/route"
	"polarstar/internal/topo"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func newTableEngine(ps *topo.PolarStar) route.Engine {
	return route.NewTable(ps.G, route.AllMinPaths)
}
