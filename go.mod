module polarstar

go 1.22
